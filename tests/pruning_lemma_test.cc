// Statistical validation of the paper's key lemmas:
//   Lemma 2:  E[|L| | U] <= |U|/2       (left recursion load)
//   Lemma 3:  E[|R| | U] <= |U|/4       (Pruning Lemma)
//   Lemma 7:  E[Z_{K-i}] <= (3/4)^i n   (geometric level decay)
// measured over many seeds via the recursion trace.
#include <gtest/gtest.h>

#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace slumber::core {
namespace {

struct LevelAverages {
  // Aggregated over seeds: sum of |U|, |L|, |R| at the top level and
  // sum of Z_{K-i} per i.
  double top_u = 0.0;
  double top_l = 0.0;
  double top_r = 0.0;
  std::vector<double> z_by_depth;  // index i = depth from root
  std::uint32_t levels = 0;
};

LevelAverages measure(const gen::Family family, const VertexId n,
                      const std::uint32_t num_seeds) {
  LevelAverages averages;
  for (std::uint32_t s = 0; s < num_seeds; ++s) {
    const Graph g = gen::make(family, n, 1000 + s);
    RecursionTrace trace;
    sim::run_protocol(g, 5000 + s, sleeping_mis({}, &trace));
    averages.levels = trace.levels;
    const auto top = trace.level_participation(trace.levels);
    averages.top_u += static_cast<double>(top.u_total);
    averages.top_l += static_cast<double>(top.left_total);
    averages.top_r += static_cast<double>(top.right_total);
    const auto z = trace.z_by_level();
    if (averages.z_by_depth.size() < z.size()) {
      averages.z_by_depth.resize(z.size(), 0.0);
    }
    for (std::uint32_t k = 0; k <= trace.levels; ++k) {
      averages.z_by_depth[trace.levels - k] += static_cast<double>(z[k]);
    }
  }
  const auto seeds = static_cast<double>(num_seeds);
  averages.top_u /= seeds;
  averages.top_l /= seeds;
  averages.top_r /= seeds;
  for (double& z : averages.z_by_depth) z /= seeds;
  return averages;
}

class PruningLemmaTest : public ::testing::TestWithParam<gen::Family> {};

TEST_P(PruningLemmaTest, LeftLoadAtMostHalf) {
  // Lemma 2 with statistical slack (40 seeds, n = 96).
  const auto averages = measure(GetParam(), 96, 40);
  ASSERT_GT(averages.top_u, 0.0);
  EXPECT_LE(averages.top_l / averages.top_u, 0.5 + 0.08)
      << gen::family_name(GetParam());
}

TEST_P(PruningLemmaTest, RightLoadAtMostQuarter) {
  // Lemma 3 (Pruning Lemma) with statistical slack.
  const auto averages = measure(GetParam(), 96, 40);
  ASSERT_GT(averages.top_u, 0.0);
  EXPECT_LE(averages.top_r / averages.top_u, 0.25 + 0.08)
      << gen::family_name(GetParam());
}

TEST_P(PruningLemmaTest, LevelDecayGeometric) {
  // Lemma 7: E[Z_{K-i}] <= (3/4)^i * n, checked for the first few
  // depths (deeper levels have tiny counts, noise dominates).
  const VertexId n = 96;
  const auto averages = measure(GetParam(), n, 40);
  const double n_actual = averages.z_by_depth.empty() ? 0 : averages.z_by_depth[0];
  ASSERT_GT(n_actual, 0.0);
  double bound = n_actual;
  for (std::uint32_t depth = 1;
       depth <= std::min<std::uint32_t>(6, averages.levels); ++depth) {
    bound *= 0.75;
    EXPECT_LE(averages.z_by_depth[depth], bound * 1.25)
        << gen::family_name(GetParam()) << " depth " << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, PruningLemmaTest,
    ::testing::Values(gen::Family::kGnpSparse, gen::Family::kGnpDense,
                      gen::Family::kCycle, gen::Family::kStar,
                      gen::Family::kRandomTree, gen::Family::kBarabasiAlbert,
                      gen::Family::kLollipop, gen::Family::kUnitDisk),
    [](const ::testing::TestParamInfo<gen::Family>& param_info) {
      return gen::family_name(param_info.param);
    });

TEST(PruningLemmaDetailTest, TotalParticipationLinearInN) {
  // Summing Lemma 7 over levels: E[sum_k Z_k] <= 4n, the heart of the
  // O(1) node-averaged bound (Lemma 8).
  for (const VertexId n : {64u, 128u, 256u}) {
    double total = 0.0;
    const std::uint32_t seeds = 20;
    for (std::uint32_t s = 0; s < seeds; ++s) {
      const Graph g = gen::make(gen::Family::kGnpSparse, n, 77 + s);
      RecursionTrace trace;
      sim::run_protocol(g, 99 + s, sleeping_mis({}, &trace));
      for (std::uint64_t z : trace.z_by_level()) {
        total += static_cast<double>(z);
      }
    }
    total /= static_cast<double>(seeds);
    EXPECT_LE(total, 4.3 * static_cast<double>(n)) << n;
  }
}

TEST(PruningLemmaDetailTest, IsolatedNodesNeverRecurse) {
  // An isolated node joins at the first detection and participates in
  // neither recursive call (it contributes |U| but not |L| or |R|).
  const Graph g = gen::empty(32);
  RecursionTrace trace;
  sim::run_protocol(g, 3, sleeping_mis({}, &trace));
  const auto top = trace.level_participation(trace.levels);
  EXPECT_EQ(top.u_total, 32u);
  EXPECT_EQ(top.left_total, 0u);
  EXPECT_EQ(top.right_total, 0u);
  EXPECT_EQ(trace.calls.at({trace.levels, 0}).isolated_joins, 32u);
}

TEST(PruningLemmaDetailTest, BiasedCoinShiftsLeftLoad) {
  // E11 ablation mechanics: P[X=1] = p makes E[|L|]/|U| ~ p.
  const VertexId n = 128;
  for (const double bias : {0.2, 0.8}) {
    double u_total = 0.0;
    double l_total = 0.0;
    for (std::uint32_t s = 0; s < 30; ++s) {
      const Graph g = gen::make(gen::Family::kGnpSparse, n, 55 + s);
      RecursionTrace trace;
      SleepingMisOptions options;
      options.coin_bias = bias;
      sim::run_protocol(g, 200 + s, sleeping_mis(options, &trace));
      const auto top = trace.level_participation(trace.levels);
      u_total += static_cast<double>(top.u_total);
      l_total += static_cast<double>(top.left_total);
    }
    EXPECT_NEAR(l_total / u_total, bias, 0.07) << "bias " << bias;
  }
}

}  // namespace
}  // namespace slumber::core
