// Crash (fail-stop) injection suite.
//
// The paper's algorithms assume reliable, non-faulty nodes; this suite
// locks in (a) the mechanics of the injection itself, and (b) the
// graceful-degradation facts: crashes never deadlock a fixed-schedule
// algorithm, decided outputs survive the crash of their node, and the
// damage of a crash is local (confined to the crashed node's
// neighborhood) for the MIS protocols.
#include <gtest/gtest.h>

#include <tuple>

#include "algos/greedy.h"
#include "algos/luby.h"
#include "analysis/verify.h"
#include "core/sleeping_mis.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/rng.h"

namespace slumber::sim {
namespace {

Task chatter_protocol(Context& ctx) {
  for (int i = 0; i < 20; ++i) co_await ctx.broadcast(Message::hello());
  ctx.decide(1);
}

TEST(CrashFaultTest, ScheduledCrashSilencesNode) {
  const Graph g = gen::path(3);  // 0-1-2
  fault::FaultPlan plan;
  plan.crash_schedule = {{1, 5}};
  NetworkOptions options;
  options.fault = &plan;
  Network net(g, 1, options);
  const Metrics& metrics = net.run(chatter_protocol);
  EXPECT_EQ(metrics.crashed_nodes, 1u);
  EXPECT_TRUE(metrics.node[1].crashed);
  EXPECT_FALSE(metrics.node[0].crashed);
  // Node 1 was awake rounds 1..4 only.
  EXPECT_EQ(metrics.node[1].awake_rounds, 4u);
  EXPECT_EQ(metrics.node[1].finish_round, 5u);
  // Survivors run to completion.
  EXPECT_EQ(metrics.node[0].awake_rounds, 20u);
  // After round 5 node 0's messages to 1 are dropped, not delivered.
  EXPECT_GT(metrics.dropped_messages, 0u);
}

TEST(CrashFaultTest, CrashAtRoundOneSendsNothing) {
  const Graph g = gen::complete(2);
  fault::FaultPlan plan;
  plan.crash_schedule = {{0, 1}};
  NetworkOptions options;
  options.fault = &plan;
  Network net(g, 2, options);
  const Metrics& metrics = net.run(chatter_protocol);
  EXPECT_EQ(metrics.node[0].messages_sent, 0u);
  EXPECT_EQ(metrics.node[0].awake_rounds, 0u);
  EXPECT_EQ(metrics.node[1].messages_received, 0u);
}

TEST(CrashFaultTest, UndecidedCrashedNodeReportsMinusOne) {
  const Graph g = gen::cycle(6);
  fault::FaultPlan plan;
  plan.crash_schedule = {{2, 1}};
  NetworkOptions options;
  options.fault = &plan;
  auto [metrics, outputs] = run_protocol(
      g, 3,
      [](Context& ctx) -> Task {
        co_await ctx.broadcast(Message::hello());
        co_await ctx.broadcast(Message::hello());
        ctx.decide(static_cast<std::int64_t>(ctx.id()));
      },
      options);
  EXPECT_EQ(outputs[2], -1);
  EXPECT_EQ(outputs[3], 3);
}

TEST(CrashFaultTest, DecidedOutputSurvivesLaterCrash) {
  const Graph g = gen::complete(2);
  fault::FaultPlan plan;
  plan.crash_schedule = {{0, 3}};
  NetworkOptions options;
  options.fault = &plan;
  auto [metrics, outputs] = run_protocol(
      g, 4,
      [](Context& ctx) -> Task {
        ctx.decide(7);  // decide immediately, keep chattering
        for (int i = 0; i < 10; ++i) co_await ctx.broadcast(Message::hello());
      },
      options);
  EXPECT_EQ(outputs[0], 7);
  EXPECT_TRUE(metrics.node[0].crashed);
}

TEST(CrashFaultTest, CrashRateMatchesConfiguredProbability) {
  const Graph g = gen::empty(2000);
  fault::FaultPlan plan;
  plan.crash_prob = 0.05;
  NetworkOptions options;
  options.fault = &plan;
  // Each node is awake exactly once; expect ~5% to crash then.
  auto [metrics, outputs] = run_protocol(
      g, 5,
      [](Context& ctx) -> Task {
        co_await ctx.listen();
        ctx.decide(1);
      },
      options);
  EXPECT_NEAR(static_cast<double>(metrics.crashed_nodes) / 2000.0, 0.05,
              0.02);
}

TEST(CrashFaultTest, DeterministicInSeed) {
  Rng rng(6);
  const Graph g = gen::gnp(60, 0.1, rng);
  fault::FaultPlan plan;
  plan.crash_prob = 0.01;
  NetworkOptions options;
  options.fault = &plan;
  auto first = run_protocol(g, 42, algos::distributed_greedy_mis(), options);
  auto second = run_protocol(g, 42, algos::distributed_greedy_mis(), options);
  EXPECT_EQ(first.outputs, second.outputs);
  EXPECT_EQ(first.metrics.crashed_nodes, second.metrics.crashed_nodes);
}

// Graceful degradation: with crashes, the surviving decided nodes of the
// greedy MIS still form an independent set (a crash can only remove
// announcements, and a node joins only on local evidence about itself).
// Maximality can genuinely be lost -- a crashed would-be-MIS node leaves
// its neighborhood uncovered -- so we assert independence only, plus
// locality of the damage: every undecided survivor has a crashed node
// within distance 2 (its decision chain was severed by the crash).
struct CrashDegradation
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(CrashDegradation, IndependenceSurvivesAndDamageIsLocal) {
  const auto [crash_prob, seed] = GetParam();
  Rng rng(seed);
  const Graph g = gen::gnp_avg_degree(150, 5.0, rng);
  fault::FaultPlan plan;
  plan.crash_prob = crash_prob;
  NetworkOptions options;
  options.fault = &plan;
  auto [metrics, outputs] =
      run_protocol(g, seed * 17 + 3, algos::distributed_greedy_mis(), options);

  // Independence among nodes that decided 1.
  for (const Edge& e : g.edges()) {
    EXPECT_FALSE(outputs[e.u] == 1 && outputs[e.v] == 1)
        << "crashed MIS edge " << e.u << "-" << e.v;
  }

  // Locality: an undecided, non-crashed node must have a crashed node
  // within distance 2 (otherwise its whole decision neighborhood was
  // healthy and the greedy argument would have decided it).
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (outputs[v] != -1 || metrics.node[v].crashed) continue;
    bool near_crash = false;
    for (VertexId u : g.neighbors(v)) {
      if (metrics.node[u].crashed) near_crash = true;
      for (VertexId w : g.neighbors(u)) {
        if (metrics.node[w].crashed) near_crash = true;
      }
    }
    EXPECT_TRUE(near_crash) << "undecided node " << v
                            << " with healthy 2-neighborhood";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rates, CrashDegradation,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.05),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace slumber::sim
