// Tests for the direct (propose-accept) distributed maximal matching.
#include <gtest/gtest.h>

#include <tuple>

#include "algos/israeli_itai.h"
#include "algos/matching.h"
#include "graph/generators.h"
#include "graph/transforms.h"
#include "sim/network.h"
#include "util/rng.h"

namespace slumber::algos {
namespace {

std::vector<EdgeId> run_matching(const Graph& g, std::uint64_t seed) {
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(
      std::max<std::uint64_t>(g.num_vertices(), 2));
  auto [metrics, outputs] =
      sim::run_protocol(g, seed, israeli_itai_matching(), options);
  auto matched = matching_from_outputs(g, outputs);
  EXPECT_TRUE(matched.has_value()) << "inconsistent partner outputs";
  return matched.value_or(std::vector<EdgeId>{});
}

TEST(IsraeliItaiTest, IsolatedNodesStayUnmatched) {
  const Graph g = gen::empty(5);
  sim::NetworkOptions options;
  auto [metrics, outputs] =
      sim::run_protocol(g, 1, israeli_itai_matching(), options);
  for (std::int64_t out : outputs) EXPECT_EQ(out, -1);
  // Zero awake rounds: they exit before their first exchange.
  EXPECT_EQ(metrics.total_awake_node_rounds, 0u);
}

TEST(IsraeliItaiTest, SingleEdgeMatches) {
  const Graph g(2, {{0, 1}});
  const auto matched = run_matching(g, 2);
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_TRUE(is_maximal_matching(g, matched));
}

TEST(IsraeliItaiTest, TriangleMatchesOneEdge) {
  const Graph g = gen::complete(3);
  const auto matched = run_matching(g, 3);
  EXPECT_EQ(matched.size(), 1u);
  EXPECT_TRUE(is_maximal_matching(g, matched));
}

TEST(IsraeliItaiTest, CompleteBipartitePerfect) {
  const Graph g = gen::complete_bipartite(7, 7);
  const auto matched = run_matching(g, 4);
  EXPECT_EQ(matched.size(), 7u);
  EXPECT_TRUE(is_maximal_matching(g, matched));
}

TEST(IsraeliItaiTest, DeterministicInSeed) {
  Rng rng(5);
  const Graph g = gen::gnp(60, 0.1, rng);
  sim::NetworkOptions options;
  auto first = sim::run_protocol(g, 99, israeli_itai_matching(), options);
  auto second = sim::run_protocol(g, 99, israeli_itai_matching(), options);
  EXPECT_EQ(first.outputs, second.outputs);
}

TEST(IsraeliItaiTest, MessagesAreConstantWidth) {
  Rng rng(6);
  const Graph g = gen::gnp_avg_degree(80, 5.0, rng);
  sim::NetworkOptions options;
  options.max_message_bits = 10;  // O(1)-bit messages, not even log n
  auto [metrics, outputs] =
      sim::run_protocol(g, 7, israeli_itai_matching(), options);
  EXPECT_EQ(metrics.congest_violations, 0u);
  auto matched = matching_from_outputs(g, outputs);
  ASSERT_TRUE(matched.has_value());
  EXPECT_TRUE(is_maximal_matching(g, *matched));
}

TEST(IsraeliItaiTest, ConsistencyCheckerCatchesLies) {
  const Graph g = gen::path(4);  // 0-1-2-3
  // 0 claims 1 but 1 claims 2: inconsistent.
  EXPECT_FALSE(matching_from_outputs(g, {1, 2, 1, -1}).has_value());
  // 0 claims 3: not an edge.
  EXPECT_FALSE(matching_from_outputs(g, {3, -1, -1, 0}).has_value());
  // Out-of-range id.
  EXPECT_FALSE(matching_from_outputs(g, {9, -1, -1, -1}).has_value());
  // Valid mutual pair.
  const auto ok = matching_from_outputs(g, {1, 0, 3, 2});
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->size(), 2u);
}

struct IsraeliItaiSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(IsraeliItaiSweep, MaximalOnManyShapes) {
  const auto [shape, seed] = GetParam();
  Rng rng(seed);
  Graph g;
  switch (shape) {
    case 0: g = gen::gnp_avg_degree(120, 6.0, rng); break;
    case 1: g = gen::cycle(101); break;
    case 2: g = gen::star(64); break;
    case 3: g = gen::grid(9, 11); break;
    case 4: g = gen::barabasi_albert(150, 3, rng); break;
    default: g = subdivision(gen::complete(8)); break;
  }
  const auto matched = run_matching(g, seed * 53 + 11);
  EXPECT_TRUE(is_maximal_matching(g, matched)) << g.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IsraeliItaiSweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(1u, 2u, 3u, 4u)));

}  // namespace
}  // namespace slumber::algos
