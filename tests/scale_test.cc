// Scale stress: the event-skipping scheduler must make Algorithm 1's
// astronomically long schedules tractable. At n = 16384 the schedule
// spans T(42) = 3(2^42 - 1) ~ 1.3 * 10^13 virtual rounds; simulation
// cost is proportional to awake node-rounds (expected O(n), Lemma 8),
// so the whole run takes well under a second. These tests are the
// library's guarantee that the design decision in DESIGN.md Section 5.2
// actually holds at four orders of magnitude beyond the bench sizes.
#include <gtest/gtest.h>

#include "analysis/verify.h"
#include "core/fast_sleeping_mis.h"
#include "core/schedule.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/rng.h"

namespace slumber {
namespace {

TEST(ScaleTest, SleepingMisAt16k) {
  Rng rng(1);
  const Graph g = gen::gnp_avg_degree(16384, 8.0, rng);
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  auto [metrics, outputs] =
      sim::run_protocol(g, 42, core::sleeping_mis(), options);
  EXPECT_TRUE(analysis::check_mis(g, outputs).ok());

  // The makespan is the closed-form schedule, ~1.3e13 rounds.
  const auto depth = core::recursion_depth(16384);
  EXPECT_EQ(metrics.makespan, core::schedule_duration(depth));
  EXPECT_GT(metrics.makespan, std::uint64_t{1} << 43);

  // ... of which only O(n) node-rounds were actually simulated.
  EXPECT_LT(metrics.total_awake_node_rounds, 16384u * 16u);
  // The awake average sits on the O(1) plateau measured in E6.
  EXPECT_GT(metrics.node_avg_awake(), 3.0);
  EXPECT_LT(metrics.node_avg_awake(), 10.0);
  // Worst-case awake is O(log n) (Lemma 9): 3 rounds per level bound.
  EXPECT_LE(metrics.worst_awake(), 3u * (depth + 1));
}

TEST(ScaleTest, FastSleepingMisAt16k) {
  Rng rng(2);
  const Graph g = gen::gnp_avg_degree(16384, 8.0, rng);
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  auto [metrics, outputs] =
      sim::run_protocol(g, 43, core::fast_sleeping_mis(), options);
  EXPECT_TRUE(analysis::check_mis(g, outputs).ok());
  // Polylog makespan: under 10^5 rounds instead of 10^13.
  EXPECT_LT(metrics.makespan, 100'000u);
  EXPECT_LT(metrics.node_avg_awake(), 10.0);
}

TEST(ScaleTest, DistinctActiveRoundsTracksAwakeWorkNotVirtualTime) {
  // The scheduler touches only rounds where somebody is awake; assert
  // that count is millions of times smaller than the virtual makespan.
  Rng rng(3);
  const Graph g = gen::gnp_avg_degree(4096, 8.0, rng);
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  auto [metrics, outputs] =
      sim::run_protocol(g, 44, core::sleeping_mis(), options);
  ASSERT_TRUE(analysis::check_mis(g, outputs).ok());
  EXPECT_LT(metrics.distinct_active_rounds * 1'000'000, metrics.makespan);
}

}  // namespace
}  // namespace slumber
