// Tests for the fixed-width histogram used by the distributional
// experiments (E17).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "analysis/histogram.h"

namespace slumber::analysis {
namespace {

TEST(HistogramTest, RejectsDegenerateShape) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, -1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, BinAssignment) {
  Histogram h(0.0, 1.0, 4);  // bins [0,1) [1,2) [2,3) [3,inf)
  h.add(0.0);
  h.add(0.99);
  h.add(1.0);
  h.add(2.5);
  h.add(17.0);   // clamps to last bin
  h.add(-3.0);   // clamps to first bin
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(3.0, 2.5, 3);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 5.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 8.0);
}

TEST(HistogramTest, FractionsSumToOne) {
  Histogram h(0.0, 1.0, 10);
  const std::vector<double> values = {0.5, 1.5, 1.7, 3.2, 9.9, 12.0};
  h.add_all(values);
  double sum = 0.0;
  for (std::size_t bin = 0; bin < h.num_bins(); ++bin) {
    sum += h.fraction(bin);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(h.tail_at_least(0.0), 0.0);
}

TEST(HistogramTest, TailProbabilities) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);  // one per bin
  EXPECT_NEAR(h.tail_at_least(0.0), 1.0, 1e-12);
  EXPECT_NEAR(h.tail_at_least(5.0), 0.5, 1e-12);
  EXPECT_NEAR(h.tail_at_least(9.0), 0.1, 1e-12);
  EXPECT_NEAR(h.tail_at_least(100.0), 0.0, 1e-12);
}

TEST(HistogramTest, RenderElidesTinyBinsAndScalesBars) {
  Histogram h(0.0, 1.0, 3);
  for (int i = 0; i < 98; ++i) h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string out = h.render("value");
  // Dominant bin gets the max-width bar.
  EXPECT_NE(out.find(std::string(52, '#')), std::string::npos);
  // 2% bin survives the default 0.2% cutoff.
  EXPECT_NE(out.find("0.0200"), std::string::npos);
  // Empty bin 2 is elided: only header + 2 data rows + separator.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace slumber::analysis
