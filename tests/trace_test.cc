// Tests for the event tracer.
#include <gtest/gtest.h>

#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "sim/trace.h"

namespace slumber::sim {
namespace {

TEST(TraceTest, RecordsWakeDeliverDecideTerminate) {
  const Graph g = gen::path(2);
  RingTrace trace;
  auto protocol = [](Context& ctx) -> Task {
    Inbox inbox = co_await ctx.broadcast(Message::hello());
    ctx.decide(static_cast<std::int64_t>(inbox.size()));
  };
  NetworkOptions options;
  options.trace = &trace;
  Network net(g, 1, options);
  net.run(protocol);
  EXPECT_EQ(trace.count(TraceEventKind::kWake), 2u);
  EXPECT_EQ(trace.count(TraceEventKind::kDeliver), 2u);
  EXPECT_EQ(trace.count(TraceEventKind::kDecide), 2u);
  EXPECT_EQ(trace.count(TraceEventKind::kTerminate), 2u);
  EXPECT_EQ(trace.count(TraceEventKind::kDropSleep), 0u);
}

TEST(TraceTest, RecordsSleepDrops) {
  const Graph g = gen::path(2);
  RingTrace trace;
  auto protocol = [](Context& ctx) -> Task {
    if (ctx.id() == 1) ctx.sleep(1);
    co_await ctx.broadcast(Message::hello());
    ctx.decide(1);
  };
  NetworkOptions options;
  options.trace = &trace;
  Network net(g, 1, options);
  net.run(protocol);
  EXPECT_EQ(trace.count(TraceEventKind::kDropSleep), 2u);
}

TEST(TraceTest, RingBufferBounded) {
  const Graph g = gen::complete(6);
  RingTrace trace(16);
  NetworkOptions options;
  options.trace = &trace;
  Network net(g, 3, options);
  net.run(core::sleeping_mis());
  EXPECT_LE(trace.events().size(), 16u);
  EXPECT_GT(trace.total_events(), 16u);
  const std::string text = trace.render();
  EXPECT_NE(text.find("earlier events elided"), std::string::npos);
}

TEST(TraceTest, FormatEventReadable) {
  TraceEvent deliver{TraceEventKind::kDeliver, 17, 3, 5, MsgKind::kStatus, 0};
  EXPECT_EQ(format_event(deliver),
            "round 17: deliver node 3 -> 5 kind=Status");
  TraceEvent decide{TraceEventKind::kDecide, 4, 9, kInvalidVertex,
                    MsgKind::kCustom, 1};
  EXPECT_EQ(format_event(decide), "round 4: decide node 9 value=1");
  TraceEvent wake{TraceEventKind::kWake, 2, 0, kInvalidVertex,
                  MsgKind::kCustom, 0};
  EXPECT_EQ(format_event(wake), "round 2: wake node 0");
}

TEST(TraceTest, KindNamesDistinct) {
  EXPECT_EQ(trace_kind_name(TraceEventKind::kDropFault), "drop-fault");
  EXPECT_EQ(trace_kind_name(TraceEventKind::kDropSleep), "drop-sleeping");
  EXPECT_NE(trace_kind_name(TraceEventKind::kWake),
            trace_kind_name(TraceEventKind::kTerminate));
}

TEST(TraceTest, WakeCountMatchesAwakeMetric) {
  Rng rng(5);
  const Graph g = gen::gnp_avg_degree(32, 4.0, rng);
  RingTrace trace(1u << 20);
  NetworkOptions options;
  options.trace = &trace;
  Network net(g, 7, options);
  const Metrics& metrics = net.run(core::sleeping_mis());
  EXPECT_EQ(trace.count(TraceEventKind::kWake),
            metrics.total_awake_node_rounds);
  EXPECT_EQ(trace.count(TraceEventKind::kDeliver), metrics.total_messages);
  EXPECT_EQ(trace.count(TraceEventKind::kTerminate), 32u);
}

}  // namespace
}  // namespace slumber::sim
