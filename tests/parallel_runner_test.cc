// Determinism contract of the parallel trial runner: run_trials must
// produce bitwise-identical MisRun sequences for every thread count
// (including the fully serial 1), and aggregate_mis must reduce them to
// identical AggregateRun values. Anything less would make measurements
// depend on the machine they ran on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/parallel.h"
#include "graph/generators.h"
#include "util/thread_pool.h"

namespace slumber::analysis {
namespace {

Graph sparse_gnp(VertexId n, std::uint64_t seed) {
  Rng rng(seed);
  return gen::gnp_avg_degree(n, 8.0, rng);
}

// Field-by-field bitwise equality of two runs, including the per-node
// metrics and the output vector.
void expect_runs_identical(const MisRun& a, const MisRun& b) {
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.node_avg_awake, b.node_avg_awake);
  EXPECT_EQ(a.worst_awake, b.worst_awake);
  EXPECT_EQ(a.node_avg_rounds, b.node_avg_rounds);
  EXPECT_EQ(a.worst_rounds, b.worst_rounds);
  EXPECT_EQ(a.mis_size, b.mis_size);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.outputs, b.outputs);
  ASSERT_EQ(a.metrics.node.size(), b.metrics.node.size());
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.metrics.total_messages, b.metrics.total_messages);
  EXPECT_EQ(a.metrics.total_awake_node_rounds,
            b.metrics.total_awake_node_rounds);
  for (std::size_t v = 0; v < a.metrics.node.size(); ++v) {
    EXPECT_EQ(a.metrics.node[v].awake_rounds, b.metrics.node[v].awake_rounds);
    EXPECT_EQ(a.metrics.node[v].finish_round, b.metrics.node[v].finish_round);
    EXPECT_EQ(a.metrics.node[v].decided_round,
              b.metrics.node[v].decided_round);
    EXPECT_EQ(a.metrics.node[v].messages_sent,
              b.metrics.node[v].messages_sent);
  }
}

void expect_aggregates_identical(const AggregateRun& a, const AggregateRun& b) {
  EXPECT_EQ(a.node_avg_awake_mean, b.node_avg_awake_mean);
  EXPECT_EQ(a.node_avg_awake_ci95, b.node_avg_awake_ci95);
  EXPECT_EQ(a.worst_awake_mean, b.worst_awake_mean);
  EXPECT_EQ(a.node_avg_rounds_mean, b.node_avg_rounds_mean);
  EXPECT_EQ(a.worst_rounds_mean, b.worst_rounds_mean);
  EXPECT_EQ(a.messages_mean, b.messages_mean);
  EXPECT_EQ(a.invalid_runs, b.invalid_runs);
  EXPECT_EQ(a.runs, b.runs);
}

class ParallelRunnerDeterminismTest
    : public ::testing::TestWithParam<MisEngine> {};

TEST_P(ParallelRunnerDeterminismTest, RunTrialsIdenticalAcrossThreadCounts) {
  const MisEngine engine = GetParam();
  const VertexId n = 192;
  const auto factory = [n](std::uint64_t seed) { return sparse_gnp(n, seed); };
  const std::uint64_t base_seed = 1234;
  const std::uint32_t num_seeds = 10;

  const std::vector<MisRun> serial =
      run_trials(engine, factory, base_seed, num_seeds, {.num_threads = 1});
  ASSERT_EQ(serial.size(), num_seeds);
  for (const unsigned threads : {2u, 8u}) {
    const std::vector<MisRun> parallel =
        run_trials(engine, factory, base_seed, num_seeds,
                   {.num_threads = threads});
    ASSERT_EQ(parallel.size(), num_seeds) << threads << " threads";
    for (std::uint32_t i = 0; i < num_seeds; ++i) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " trial=" << i);
      expect_runs_identical(serial[i], parallel[i]);
    }
  }
}

TEST_P(ParallelRunnerDeterminismTest, AggregateMatchesSerialAggregateMis) {
  const MisEngine engine = GetParam();
  const VertexId n = 192;
  const auto factory = [n](std::uint64_t seed) { return sparse_gnp(n, seed); };
  const std::uint64_t base_seed = 77;
  const std::uint32_t num_seeds = 10;

  const AggregateRun serial =
      aggregate_mis(engine, factory, base_seed, num_seeds, {.num_threads = 1});
  EXPECT_EQ(serial.runs, num_seeds);
  EXPECT_EQ(serial.invalid_runs, 0u);
  for (const unsigned threads : {2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    expect_aggregates_identical(
        serial, aggregate_mis(engine, factory, base_seed, num_seeds,
                              {.num_threads = threads}));
    expect_aggregates_identical(
        serial, aggregate_runs(run_trials(engine, factory, base_seed,
                                          num_seeds,
                                          {.num_threads = threads})));
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, ParallelRunnerDeterminismTest,
                         ::testing::Values(MisEngine::kSleeping,
                                           MisEngine::kFastSleeping,
                                           MisEngine::kLubyA),
                         [](const auto& param_info) {
                           return engine_name(param_info.param) == "SleepingMIS"
                                      ? std::string("Sleeping")
                                  : engine_name(param_info.param) ==
                                          "Fast-SleepingMIS"
                                      ? std::string("FastSleeping")
                                      : std::string("LubyA");
                         });

TEST(TrialSeedTest, MatchesSpecifiedSchedule) {
  // The schedule is splitmix64(base_seed + i) by specification — a pure
  // function of base_seed + i, never of execution order.
  std::uint64_t sm = 42 + 7;
  EXPECT_EQ(trial_seed(42, 7), splitmix64(sm));
  EXPECT_EQ(trial_seed(42, 0), trial_seed(42, 0));
  EXPECT_NE(trial_seed(42, 0), trial_seed(42, 1));
  // Consequence of that schedule: batches whose base seeds are closer
  // together than their trial count share trials. Callers must space
  // base seeds at least num_seeds apart (the 31 * n / 7 * n bases in the
  // benches do).
  EXPECT_EQ(trial_seed(42, 1), trial_seed(43, 0));
}

TEST(ParallelTrialsTest, OrderedResultsForAnyThreadCount) {
  const auto fn = [](std::size_t i) {
    return static_cast<std::uint64_t>(i) * 2654435761u + 17;
  };
  const std::vector<std::uint64_t> serial = parallel_trials(257, 1, fn);
  for (const unsigned threads : {2u, 3u, 8u, 32u}) {
    EXPECT_EQ(parallel_trials(257, threads, fn), serial) << threads;
  }
  EXPECT_TRUE(parallel_trials(0, 4, fn).empty());
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_index(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
  // The pool is reusable for subsequent batches.
  pool.parallel_for_index(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 2) << i;
  }
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_index(
                   100,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("trial 37 failed");
                   }),
               std::runtime_error);
  // Still usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for_index(50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, EmptyBatchIsANoOp) {
  util::ThreadPool pool(4);
  std::atomic<int> calls{0};
  // Must return immediately without touching the condition variables or
  // invoking fn; a missed-wakeup bug here would hang the test.
  pool.parallel_for_index(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  // The pool stays usable afterwards.
  pool.parallel_for_index(10, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPoolTest, SingleItemRunsInlineOnTheCaller) {
  util::ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  int calls = 0;  // no atomic needed: the call must happen on the caller
  pool.parallel_for_index(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ran_on = std::this_thread::get_id();
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(ran_on, caller);
  // Exceptions from the inline path propagate directly.
  EXPECT_THROW(pool.parallel_for_index(
                   1, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedCallOnSamePoolRunsSeriallyInsteadOfDeadlocking) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> inner_hits(64);
  std::atomic<int> outer_hits{0};
  // Before the reentrancy guard this deadlocked silently: the nested
  // call waited on lanes that were all busy with the outer batch.
  pool.parallel_for_index(8, [&](std::size_t) {
    outer_hits.fetch_add(1, std::memory_order_relaxed);
    const std::thread::id me = std::this_thread::get_id();
    pool.parallel_for_index(inner_hits.size(), [&](std::size_t i) {
      // The nested batch runs inline on the nesting thread.
      EXPECT_EQ(std::this_thread::get_id(), me);
      inner_hits[i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(outer_hits.load(), 8);
  for (std::size_t i = 0; i < inner_hits.size(); ++i) {
    EXPECT_EQ(inner_hits[i].load(), 8) << i;
  }
  // A nested call on a *different* pool still dispatches normally. One
  // outer item drives it: a pool runs one batch at a time, so only a
  // single thread may submit to `other`.
  util::ThreadPool other(2);
  std::atomic<int> cross{0};
  pool.parallel_for_index(4, [&](std::size_t item) {
    if (item == 0) {
      other.parallel_for_index(10, [&](std::size_t) {
        cross.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(cross.load(), 10);
}

TEST(ParallelForRangeTest, ChunksPartitionContiguouslyInOrder) {
  for (const unsigned threads : {1u, 3u, 8u}) {
    util::ThreadPool pool(threads);
    for (const std::size_t total : {0u, 1u, 2u, 7u, 8u, 100u, 257u}) {
      const std::size_t chunks = pool.num_chunks(total);
      EXPECT_EQ(chunks, std::min<std::size_t>(threads, total));
      std::vector<std::pair<std::size_t, std::size_t>> bounds(chunks);
      std::vector<std::atomic<int>> covered(total);
      pool.parallel_for_range(
          total, [&](std::size_t c, std::size_t begin, std::size_t end) {
            bounds[c] = {begin, end};
            for (std::size_t i = begin; i < end; ++i) {
              covered[i].fetch_add(1, std::memory_order_relaxed);
            }
          });
      // Chunk c+1 starts where chunk c ends, chunk sizes differ by at
      // most one, and every index is covered exactly once.
      std::size_t expect_begin = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        EXPECT_EQ(bounds[c].first, expect_begin)
            << "threads=" << threads << " total=" << total << " chunk=" << c;
        EXPECT_GE(bounds[c].second, bounds[c].first);
        const std::size_t size = bounds[c].second - bounds[c].first;
        EXPECT_GE(size, total / chunks);
        EXPECT_LE(size, total / chunks + 1);
        expect_begin = bounds[c].second;
      }
      EXPECT_EQ(expect_begin, total);
      for (std::size_t i = 0; i < total; ++i) {
        EXPECT_EQ(covered[i].load(), 1) << i;
      }
    }
  }
}

TEST(ParallelForRangeTest, PerChunkPartialsReduceDeterministically) {
  // The bulk engine's accumulator pattern: per-chunk partials merged in
  // chunk index order must equal the serial sum for any pool size.
  const std::size_t total = 1000;
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < total; ++i) expected += i * i;
  for (const unsigned threads : {1u, 2u, 5u, 16u}) {
    util::ThreadPool pool(threads);
    std::vector<std::uint64_t> partial(pool.num_chunks(total), 0);
    pool.parallel_for_range(
        total, [&](std::size_t c, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) partial[c] += i * i;
        });
    std::uint64_t sum = 0;
    for (const std::uint64_t p : partial) sum += p;
    EXPECT_EQ(sum, expected) << threads << " threads";
  }
}

TEST(DefaultTrialThreadsTest, OverrideWins) {
  set_default_trial_threads(3);
  EXPECT_EQ(default_trial_threads(), 3u);
  set_default_trial_threads(0);
  EXPECT_GE(default_trial_threads(), 1u);
}

}  // namespace
}  // namespace slumber::analysis
