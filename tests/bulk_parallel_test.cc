// Bitwise-equivalence matrix for the intra-trial parallel bulk path:
// sharding the per-frame node scans over a thread pool must reproduce
// the serial bulk engine — and therefore the coroutine engine — exactly
// (outputs, per-node + aggregate sim::Metrics, recursion traces) for
// every thread count. The suites run with parallel_cutoff = 1 so even
// tiny recursion frames dispatch through the pool, exercising the
// chunked accounting merge on every scan. These tests are also the
// ThreadSanitizer workload for the parallel bulk path (the tsan CI
// job).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/verify.h"
#include "bulk/baselines.h"
#include "bulk/engine.h"
#include "bulk/sleeping_mis.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "metrics_test_util.h"
#include "sim/network.h"
#include "util/thread_pool.h"

namespace slumber {
namespace {

using analysis::ExecEngine;
using analysis::MisEngine;

// The acceptance matrix's lane counts; 1 pins the pooled-but-serial
// configuration against the pool-less path.
const unsigned kLaneCounts[] = {1, 2, 3, 8};

bulk::BulkOptions parallel_options(const Graph& g, util::ThreadPool* pool) {
  bulk::BulkOptions options;
  options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  options.pool = pool;
  options.parallel_cutoff = 1;  // shard even one-node frames
  return options;
}

bulk::BulkResult run_bulk_mis(MisEngine engine, const Graph& g,
                              std::uint64_t seed, util::ThreadPool* pool,
                              core::RecursionTrace* trace = nullptr) {
  auto protocol = bulk::bulk_mis_protocol(engine, trace);
  EXPECT_NE(protocol, nullptr);
  return bulk::run_bulk(g, seed, *protocol, parallel_options(g, pool));
}

// --- the acceptance matrix: thread counts x generators x seeds -------

class BulkParallelCrossValidation
    : public ::testing::TestWithParam<gen::Family> {};

TEST_P(BulkParallelCrossValidation, SleepingMisTenSeedsAllLaneCounts) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = gen::make(GetParam(), 600, seed);
    const auto coro = analysis::run_mis(MisEngine::kSleeping, g, seed);
    const auto serial = run_bulk_mis(MisEngine::kSleeping, g, seed, nullptr);
    EXPECT_EQ(coro.outputs, serial.outputs) << "seed=" << seed;
    ExpectMetricsEqual(coro.metrics, serial.metrics);
    for (const unsigned lanes : kLaneCounts) {
      SCOPED_TRACE(testing::Message() << "seed=" << seed
                                      << " lanes=" << lanes);
      util::ThreadPool pool(lanes);
      const auto sharded =
          run_bulk_mis(MisEngine::kSleeping, g, seed, &pool);
      EXPECT_EQ(serial.outputs, sharded.outputs);
      EXPECT_TRUE(sharded.virtual_makespan == serial.virtual_makespan);
      ExpectMetricsEqual(serial.metrics, sharded.metrics);
    }
  }
}

TEST_P(BulkParallelCrossValidation, BaselinesAgreeAcrossLaneCounts) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = gen::make(GetParam(), 256, seed);
    for (const MisEngine engine :
         {MisEngine::kLubyA, MisEngine::kLubyB, MisEngine::kGreedy}) {
      SCOPED_TRACE("engine=" + analysis::engine_name(engine) +
                   " seed=" + std::to_string(seed));
      const auto coro = analysis::run_mis(engine, g, seed);
      for (const unsigned lanes : {2u, 8u}) {
        util::ThreadPool pool(lanes);
        const auto sharded = run_bulk_mis(engine, g, seed, &pool);
        EXPECT_EQ(coro.outputs, sharded.outputs) << lanes << " lanes";
        ExpectMetricsEqual(coro.metrics, sharded.metrics);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, BulkParallelCrossValidation,
                         ::testing::Values(gen::Family::kGnpSparse,
                                           gen::Family::kRandomTree,
                                           gen::Family::kUnitDisk,
                                           gen::Family::kStar),
                         [](const auto& param_info) {
                           return gen::family_name(param_info.param);
                         });

// --- recursion traces shard-invariantly ------------------------------

TEST(BulkParallelTrace, RecursionTraceMatchesAtEveryLaneCount) {
  Rng rng(7);
  const Graph g = gen::gnp_avg_degree(400, 8.0, rng);
  core::RecursionTrace serial_trace;
  const auto serial =
      run_bulk_mis(MisEngine::kSleeping, g, 7, nullptr, &serial_trace);
  for (const unsigned lanes : kLaneCounts) {
    SCOPED_TRACE(testing::Message() << "lanes=" << lanes);
    util::ThreadPool pool(lanes);
    core::RecursionTrace trace;
    const auto sharded =
        run_bulk_mis(MisEngine::kSleeping, g, 7, &pool, &trace);
    EXPECT_EQ(serial.outputs, sharded.outputs);
    EXPECT_EQ(serial_trace.levels, trace.levels);
    EXPECT_EQ(serial_trace.bits, trace.bits);
    ASSERT_EQ(serial_trace.calls.size(), trace.calls.size());
    for (const auto& [key, stats] : serial_trace.calls) {
      const auto it = trace.calls.find(key);
      ASSERT_NE(it, trace.calls.end())
          << "call (k=" << key.first << ", path=" << key.second
          << ") missing at " << lanes << " lanes";
      EXPECT_EQ(stats.participants, it->second.participants);
      EXPECT_EQ(stats.left, it->second.left);
      EXPECT_EQ(stats.right, it->second.right);
      EXPECT_EQ(stats.isolated_joins, it->second.isolated_joins);
      EXPECT_EQ(stats.first_round, it->second.first_round);
    }
    EXPECT_EQ(serial_trace.z_by_level(), trace.z_by_level());
  }
}

// --- protocols outside the MisEngine enum ----------------------------

TEST(BulkParallelBaselines, IsraeliItaiAgreesAcrossLaneCounts) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp_avg_degree(200, 5.0, rng);
    bulk::BulkIsraeliItai serial_protocol;
    const auto serial =
        bulk::run_bulk(g, seed, serial_protocol, parallel_options(g, nullptr));
    for (const unsigned lanes : {2u, 8u}) {
      util::ThreadPool pool(lanes);
      bulk::BulkIsraeliItai protocol;
      const auto sharded =
          bulk::run_bulk(g, seed, protocol, parallel_options(g, &pool));
      EXPECT_EQ(serial.outputs, sharded.outputs)
          << "seed=" << seed << " lanes=" << lanes;
      ExpectMetricsEqual(serial.metrics, sharded.metrics);
    }
  }
}

TEST(BulkParallelBaselines, BeepingMisAgreesAcrossLaneCounts) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp_avg_degree(120, 4.0, rng);
    bulk::BulkOptions base;
    base.max_message_bits = 1;
    base.parallel_cutoff = 1;
    bulk::BulkBeepingMis serial_protocol;
    const auto serial = bulk::run_bulk(g, seed, serial_protocol, base);
    for (const unsigned lanes : {2u, 8u}) {
      util::ThreadPool pool(lanes);
      bulk::BulkOptions options = base;
      options.pool = &pool;
      bulk::BulkBeepingMis protocol;
      const auto sharded = bulk::run_bulk(g, seed, protocol, options);
      EXPECT_EQ(serial.outputs, sharded.outputs)
          << "seed=" << seed << " lanes=" << lanes;
      ExpectMetricsEqual(serial.metrics, sharded.metrics);
    }
  }
}

// --- run_mis wiring with the default cutoff --------------------------

TEST(BulkParallelRunMis, PoolParameterIsBitwiseInvariant) {
  // n = 10,000 exceeds the default parallel_cutoff, so the big frames
  // genuinely shard while the deep tiny frames take the serial path —
  // both paths must agree with the pool-less run.
  Rng rng(5);
  const Graph g = gen::gnp_avg_degree(10000, 8.0, rng);
  const auto serial =
      analysis::run_mis(MisEngine::kSleeping, g, 5, {.exec = ExecEngine::kBulk});
  util::ThreadPool pool(4);
  const auto sharded = analysis::run_mis(
      MisEngine::kSleeping, g, 5, {.exec = ExecEngine::kBulk, .pool = &pool});
  EXPECT_EQ(serial.outputs, sharded.outputs);
  EXPECT_EQ(serial.valid, sharded.valid);
  EXPECT_EQ(serial.mis_size, sharded.mis_size);
  ExpectMetricsEqual(serial.metrics, sharded.metrics);
}

// --- memory diet: dropped per-node metrics ---------------------------

TEST(BulkMemoryDiet, NodeMetricsOffKeepsOutputsAndAggregates) {
  Rng rng(11);
  const Graph g = gen::gnp_avg_degree(2000, 8.0, rng);
  const auto full = run_bulk_mis(MisEngine::kSleeping, g, 11, nullptr);
  for (const unsigned lanes : {1u, 4u}) {
    util::ThreadPool pool(lanes);
    bulk::BulkOptions options = parallel_options(g, &pool);
    options.node_metrics = false;
    const auto diet = bulk::bulk_sleeping_mis(g, 11, {}, nullptr, options);
    EXPECT_TRUE(diet.metrics.node.empty()) << lanes << " lanes";
    EXPECT_EQ(full.outputs, diet.outputs);
    EXPECT_TRUE(diet.virtual_makespan == full.virtual_makespan);
    EXPECT_EQ(full.metrics.total_awake_node_rounds,
              diet.metrics.total_awake_node_rounds);
    EXPECT_EQ(full.metrics.distinct_active_rounds,
              diet.metrics.distinct_active_rounds);
    EXPECT_EQ(full.metrics.total_messages, diet.metrics.total_messages);
    EXPECT_EQ(full.metrics.dropped_messages, diet.metrics.dropped_messages);
    EXPECT_EQ(full.metrics.max_message_bits_seen,
              diet.metrics.max_message_bits_seen);
    // makespan falls back to the saturated virtual makespan, which for
    // Algorithm 1 equals every node's finish round.
    EXPECT_EQ(full.metrics.makespan, diet.metrics.makespan);
    EXPECT_TRUE(analysis::check_mis(g, diet.outputs).ok());
  }
}

// --- memory-diet graphs: streaming CSR construction ------------------

TEST(BulkMemoryDiet, GnpCsrMatchesGnpBitwise) {
  for (const VertexId n : {2u, 97u, 4000u}) {
    Rng rng_list(n);
    Rng rng_csr(n);
    const Graph a = gen::gnp_avg_degree(n, 8.0, rng_list);
    const Graph b = gen::gnp_avg_degree_csr(n, 8.0, rng_csr);
    ASSERT_EQ(a.num_vertices(), b.num_vertices());
    EXPECT_EQ(a.num_edges(), b.num_edges());
    EXPECT_EQ(a.max_degree(), b.max_degree());
    for (VertexId v = 0; v < n; ++v) {
      ASSERT_EQ(a.degree(v), b.degree(v)) << "n=" << n << " v=" << v;
      const auto na = a.neighbors(v);
      const auto nb = b.neighbors(v);
      ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
          << "n=" << n << " v=" << v;
    }
    // Both generators must leave the caller's RNG in the same state.
    EXPECT_EQ(rng_list.next(), rng_csr.next()) << "n=" << n;
    EXPECT_TRUE(a.has_edge_list());
    EXPECT_FALSE(b.has_edge_list());
    EXPECT_THROW(b.edges(), std::logic_error);
  }
}

TEST(BulkMemoryDiet, CsrGraphRunsIdenticallyToEdgeListGraph) {
  Rng rng_list(3);
  Rng rng_csr(3);
  const Graph a = gen::gnp_avg_degree(1500, 8.0, rng_list);
  const Graph b = gen::gnp_avg_degree_csr(1500, 8.0, rng_csr);
  const auto run_a = run_bulk_mis(MisEngine::kSleeping, a, 3, nullptr);
  const auto run_b = run_bulk_mis(MisEngine::kSleeping, b, 3, nullptr);
  EXPECT_EQ(run_a.outputs, run_b.outputs);
  ExpectMetricsEqual(run_a.metrics, run_b.metrics);
  EXPECT_TRUE(analysis::check_mis(b, run_b.outputs).ok());
}

TEST(BulkMemoryDiet, FromCsrValidatesShape) {
  // Malformed: offsets not covering adjacency.
  EXPECT_THROW(Graph::from_csr(2, {0, 1, 1}, {1, 0}), std::invalid_argument);
  // Self-loop.
  EXPECT_THROW(Graph::from_csr(2, {0, 1, 2}, {0, 0}), std::invalid_argument);
  // Asymmetric adjacency (1 lists 0, 0 does not list 1).
  EXPECT_THROW(Graph::from_csr(3, {0, 1, 2, 2}, {2, 0}),
               std::invalid_argument);
  // Unsorted range.
  EXPECT_THROW(Graph::from_csr(3, {0, 2, 3, 4}, {2, 1, 0, 0}),
               std::invalid_argument);
  // A valid path graph round-trips.
  const Graph p = Graph::from_csr(3, {0, 1, 3, 4}, {1, 0, 2, 1});
  EXPECT_EQ(p.num_edges(), 2u);
  EXPECT_EQ(p.degree(1), 2u);
  EXPECT_FALSE(p.has_edge_list());
}

}  // namespace
}  // namespace slumber
