// Tests for the MIS / coloring verifiers themselves.
#include <gtest/gtest.h>

#include "analysis/verify.h"
#include "graph/generators.h"

namespace slumber::analysis {
namespace {

TEST(VerifyTest, AcceptsValidMis) {
  const Graph g = gen::path(4);
  const std::vector<std::int64_t> outputs = {1, 0, 1, 0};
  const MisCheck check = check_mis(g, outputs);
  EXPECT_TRUE(check.ok());
  EXPECT_EQ(check.describe(), "valid MIS");
}

TEST(VerifyTest, RejectsAdjacentPair) {
  const Graph g = gen::path(3);
  const std::vector<std::int64_t> outputs = {1, 1, 0};
  const MisCheck check = check_mis(g, outputs);
  EXPECT_FALSE(check.is_independent);
  EXPECT_NE(check.describe().find("not-independent"), std::string::npos);
}

TEST(VerifyTest, RejectsNonMaximal) {
  const Graph g = gen::path(5);
  const std::vector<std::int64_t> outputs = {1, 0, 0, 0, 1};
  const MisCheck check = check_mis(g, outputs);
  EXPECT_TRUE(check.is_independent);
  EXPECT_FALSE(check.is_maximal);  // vertex 2 undominated
}

TEST(VerifyTest, RejectsUndecided) {
  const Graph g = gen::path(2);
  const std::vector<std::int64_t> outputs = {1, -1};
  const MisCheck check = check_mis(g, outputs);
  EXPECT_FALSE(check.all_decided);
  EXPECT_FALSE(check.ok());
}

TEST(VerifyTest, EmptyGraphEmptySetIsMis) {
  const Graph g = gen::empty(0);
  EXPECT_TRUE(check_mis(g, {}).ok());
}

TEST(VerifyTest, IndicatorVariantAgrees) {
  const Graph g = gen::cycle(6);
  const std::vector<std::uint8_t> in_mis = {1, 0, 1, 0, 1, 0};
  EXPECT_TRUE(check_mis_indicator(g, in_mis).ok());
  const std::vector<std::uint8_t> bad = {1, 1, 0, 0, 0, 0};
  EXPECT_FALSE(check_mis_indicator(g, bad).is_independent);
}

TEST(VerifyTest, ColoringChecks) {
  const Graph g = gen::path(3);
  EXPECT_TRUE(check_coloring(g, {0, 1, 0}));
  EXPECT_FALSE(check_coloring(g, {0, 0, 1}));   // adjacent same color
  EXPECT_FALSE(check_coloring(g, {0, 5, 0}));   // out of palette (deg+1)
  EXPECT_FALSE(check_coloring(g, {0, -1, 0}));  // negative
}

TEST(VerifyTest, MisVerticesExtractsSet) {
  const std::vector<std::int64_t> outputs = {1, 0, 0, 1, 1};
  const auto vertices = mis_vertices(outputs);
  EXPECT_EQ(vertices, (std::vector<VertexId>{0, 3, 4}));
}

}  // namespace
}  // namespace slumber::analysis
