// Tests for the statistics helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/stats.h"
#include "analysis/table.h"

namespace slumber::analysis {
namespace {

TEST(StatsTest, SummaryBasics) {
  const std::vector<double> values = {1, 2, 3, 4, 5};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_GT(s.ci95, 0.0);
}

TEST(StatsTest, SummaryEmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one = {7.0};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(StatsTest, LinearFitExact) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(StatsTest, LinearFitDegenerate) {
  const std::vector<double> x = {2, 2, 2};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(linear_fit(x, y).slope, 0.0);
  EXPECT_DOUBLE_EQ(linear_fit({}, {}).slope, 0.0);
}

TEST(StatsTest, PowerFitRecoversExponent) {
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 2; v <= 1024; v *= 2) {
    x.push_back(v);
    y.push_back(3.0 * v * v * v);  // y = 3 x^3
  }
  const LinearFit fit = power_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);       // exponent
  EXPECT_NEAR(fit.intercept, std::log2(3.0), 1e-9);
}

TEST(StatsTest, LogFitDetectsConstantVsLogGrowth) {
  std::vector<double> x;
  std::vector<double> constant;
  std::vector<double> logarithmic;
  for (double v = 4; v <= 4096; v *= 2) {
    x.push_back(v);
    constant.push_back(5.0);
    logarithmic.push_back(2.0 * std::log2(v) + 1.0);
  }
  EXPECT_NEAR(log_fit(x, constant).slope, 0.0, 1e-12);
  EXPECT_NEAR(log_fit(x, logarithmic).slope, 2.0, 1e-9);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> values = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(values, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 25.0);
}

TEST(StatsTest, MeanCiString) {
  const std::vector<double> values = {1, 1, 1};
  EXPECT_EQ(mean_ci_string(summarize(values)), "1.00 +- 0.00");
}

TEST(TableTest, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string text = table.render();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(text.find("|-------|-------|"), std::string::npos);
}

TEST(TableTest, RejectsArityMismatch) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

}  // namespace
}  // namespace slumber::analysis
