// Tests for Algorithm 2 (Fast-SleepingMIS): correctness, the truncated
// schedule (Theorem 2), the fixed-duration greedy base case, and the
// Corollary-1 equivalence with sequential greedy on (bits, base rank).
#include <gtest/gtest.h>

#include "analysis/verify.h"
#include "core/fast_sleeping_mis.h"
#include "core/rank.h"
#include "core/schedule.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace slumber::core {
namespace {

sim::RunResult run_on(const Graph& g, std::uint64_t seed,
                      RecursionTrace* trace = nullptr,
                      FastSleepingMisOptions options = {}) {
  sim::NetworkOptions net_options;
  net_options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  return sim::run_protocol(g, seed, fast_sleeping_mis(options, trace),
                           net_options);
}

TEST(FastSleepingMisTest, ValidOnManyFamiliesAndSeeds) {
  for (gen::Family family : gen::core_families()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Graph g = gen::make(family, 80, seed);
      auto [metrics, outputs] = run_on(g, seed * 31 + 7);
      EXPECT_TRUE(analysis::check_mis(g, outputs).ok())
          << gen::family_name(family) << " seed " << seed;
    }
  }
}

TEST(FastSleepingMisTest, MakespanMatchesTruncatedSchedule) {
  // Theorem 2 / Lemma 13: all nodes finish at exactly T2(K2) where
  // T2(0) = R (the fixed greedy budget).
  for (const VertexId n : {16u, 64u, 256u}) {
    Rng rng(n);
    const Graph g = gen::gnp_avg_degree(n, 6.0, rng);
    auto [metrics, outputs] = run_on(g, 5);
    const std::uint64_t expected =
        schedule_duration(fast_recursion_depth(n), greedy_base_rounds(n));
    EXPECT_EQ(metrics.makespan, expected) << n;
    for (VertexId v = 0; v < n; ++v) {
      EXPECT_EQ(metrics.node[v].finish_round, expected);
    }
  }
}

TEST(FastSleepingMisTest, MakespanIsPolylogNotCubic) {
  const VertexId n = 256;
  Rng rng(1);
  const Graph g = gen::gnp_avg_degree(n, 6.0, rng);
  auto [metrics, outputs] = run_on(g, 9);
  // Algorithm 1 would take ~3 n^3 = 5e7 rounds; Algorithm 2 stays tiny.
  EXPECT_LT(metrics.makespan, 100'000u);
  EXPECT_GT(metrics.makespan, 10u);
}

TEST(FastSleepingMisTest, MatchesSequentialGreedyOnBitsAndRanks) {
  // Corollary 1 for Algorithm 2: output equals sequential greedy under
  // the order (decreasing K2-rank, then decreasing (base rank, id)).
  for (gen::Family family :
       {gen::Family::kGnpSparse, gen::Family::kGrid, gen::Family::kStar,
        gen::Family::kBarabasiAlbert}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const Graph g = gen::make(family, 70, seed);
      RecursionTrace trace;
      auto [metrics, outputs] = run_on(g, seed * 101, &trace);
      const auto order = greedy_order_from_bits_and_base(
          trace.bits, trace.levels, trace.base_rank);
      const auto expected = lex_first_mis(g, order);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(outputs[v], static_cast<std::int64_t>(expected[v]))
            << gen::family_name(family) << " seed " << seed << " v " << v;
      }
    }
  }
}

TEST(FastSleepingMisTest, BaseBudgetOverrideChangesMakespan) {
  Rng rng(2);
  const Graph g = gen::gnp_avg_degree(64, 6.0, rng);
  FastSleepingMisOptions options;
  options.base_rounds = 20;
  auto [metrics, outputs] = run_on(g, 3, nullptr, options);
  EXPECT_EQ(metrics.makespan,
            schedule_duration(fast_recursion_depth(64), 20));
}

TEST(FastSleepingMisTest, LevelsOverrideUsesDeeperTree) {
  Rng rng(3);
  const Graph g = gen::gnp_avg_degree(64, 6.0, rng);
  FastSleepingMisOptions options;
  options.levels = 7;
  RecursionTrace trace;
  auto [metrics, outputs] = run_on(g, 3, &trace, options);
  EXPECT_EQ(trace.levels, 7u);
  EXPECT_EQ(metrics.makespan,
            schedule_duration(7, greedy_base_rounds(64)));
  EXPECT_TRUE(analysis::check_mis(g, outputs).ok());
}

TEST(FastSleepingMisTest, TinyBudgetLeavesBaseUnknownButIndependent) {
  // With an absurdly small base budget the greedy cannot finish dense
  // cells: the run must remain independent (never two adjacent MIS
  // nodes) even if maximality fails -- the Monte Carlo failure mode.
  const Graph g = gen::complete(24);
  FastSleepingMisOptions options;
  options.base_rounds = 2;
  options.levels = 1;
  auto [metrics, outputs] = run_on(g, 5, nullptr, options);
  for (const Edge& e : g.edges()) {
    EXPECT_FALSE(outputs[e.u] == 1 && outputs[e.v] == 1);
  }
}

TEST(FastSleepingMisTest, WorstAwakeIsLogarithmicNotLinear) {
  // Lemma 15: worst-case awake O(log n): depth O(log log n) frames plus
  // one O(log n) base case.
  const VertexId n = 512;
  Rng rng(4);
  const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
  auto [metrics, outputs] = run_on(g, 6);
  EXPECT_LE(metrics.worst_awake(), 120u);  // ~ c log n, far below n
}

TEST(FastSleepingMisTest, SingleNode) {
  const Graph g = gen::empty(1);
  auto [metrics, outputs] = run_on(g, 1);
  EXPECT_EQ(outputs[0], 1);
}

TEST(FastSleepingMisTest, TwoNodesOneWins) {
  const Graph g = gen::path(2);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto [metrics, outputs] = run_on(g, seed);
    EXPECT_EQ(outputs[0] + outputs[1], 1) << seed;
  }
}

TEST(FastSleepingMisTest, DeterministicGivenSeed) {
  Rng rng(5);
  const Graph g = gen::gnp_avg_degree(64, 6.0, rng);
  auto a = run_on(g, 88);
  auto b = run_on(g, 88);
  EXPECT_EQ(a.outputs, b.outputs);
}

TEST(FastSleepingMisTest, CongestBudgetRespected) {
  Rng rng(6);
  const Graph g = gen::gnp_avg_degree(128, 8.0, rng);
  auto [metrics, outputs] = run_on(g, 2);
  EXPECT_EQ(metrics.congest_violations, 0u);
}

TEST(FastSleepingMisTest, BaseRanksRecorded) {
  Rng rng(7);
  const Graph g = gen::gnp_avg_degree(32, 4.0, rng);
  RecursionTrace trace;
  run_on(g, 3, &trace);
  ASSERT_EQ(trace.base_rank.size(), 32u);
  // Ranks fit the declared bit width.
  const std::uint64_t limit = 1ULL << greedy_rank_bits(32);
  for (std::uint64_t r : trace.base_rank) EXPECT_LT(r, limit);
}

}  // namespace
}  // namespace slumber::core
