// Failure-injection suite: what happens to the algorithms when the
// synchronous-reliable assumption of the model breaks (lossy wireless
// links, the paper's motivating physical layer).
//
// The findings these tests lock in:
//   * loss = 0 is the baseline: everything valid (covered elsewhere);
//   * the simulator's injection is deterministic in the seed and hits
//     the declared rate;
//   * under loss, SleepingMIS can produce INVALID outputs (a missed
//     elimination message breaks independence) -- the algorithms are
//     designed for the reliable model, and the suite quantifies the
//     sensitivity instead of hiding it;
//   * termination is preserved under loss for the fixed-schedule
//     algorithms (they never wait on a message), and the verifier
//     catches every corruption.
#include <gtest/gtest.h>

#include "algos/greedy.h"
#include "analysis/verify.h"
#include "core/sleeping_mis.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace slumber::sim {
namespace {

TEST(RobustnessTest, LossRateMatchesConfiguredProbability) {
  const Graph g = gen::complete(20);
  auto protocol = [](Context& ctx) -> Task {
    for (int i = 0; i < 50; ++i) co_await ctx.broadcast(Message::hello());
    ctx.decide(1);
  };
  fault::FaultPlan plan;
  plan.loss_prob = 0.3;
  NetworkOptions options;
  options.fault = &plan;
  Network net(g, 5, options);
  const Metrics& metrics = net.run(protocol);
  const double sent = 20.0 * 19.0 * 50.0;
  const double loss_rate =
      static_cast<double>(metrics.injected_losses) / sent;
  EXPECT_NEAR(loss_rate, 0.3, 0.02);
  EXPECT_EQ(metrics.total_messages + metrics.injected_losses,
            static_cast<std::uint64_t>(sent));
}

TEST(RobustnessTest, ZeroLossInjectsNothing) {
  const Graph g = gen::cycle(8);
  auto protocol = [](Context& ctx) -> Task {
    co_await ctx.broadcast(Message::hello());
    ctx.decide(1);
  };
  fault::FaultPlan plan;
  plan.loss_prob = 0.0;
  NetworkOptions options;
  options.fault = &plan;
  Network net(g, 5, options);
  EXPECT_EQ(net.run(protocol).injected_losses, 0u);
}

TEST(RobustnessTest, InjectionDeterministicInSeed) {
  const Graph g = gen::complete(10);
  auto protocol = [](Context& ctx) -> Task {
    Inbox inbox = co_await ctx.broadcast(Message::hello());
    ctx.decide(static_cast<std::int64_t>(inbox.size()));
  };
  fault::FaultPlan plan;
  plan.loss_prob = 0.5;
  NetworkOptions options;
  options.fault = &plan;
  Network a(g, 77, options);
  Network b(g, 77, options);
  a.run(protocol);
  b.run(protocol);
  EXPECT_EQ(a.outputs(), b.outputs());
  EXPECT_EQ(a.metrics().injected_losses, b.metrics().injected_losses);
}

TEST(RobustnessTest, SleepingMisTerminatesUnderLoss) {
  // The schedule is fixed (sleep durations are computed, not awaited),
  // so even heavy loss cannot deadlock Algorithm 1: every node still
  // finishes at exactly T(K).
  Rng rng(4);
  const Graph g = gen::gnp_avg_degree(48, 6.0, rng);
  fault::FaultPlan plan;
  plan.loss_prob = 0.5;
  NetworkOptions options;
  options.fault = &plan;
  Network net(g, 9, options);
  const Metrics& metrics = net.run(core::sleeping_mis());
  const std::uint64_t expected_finish = metrics.node[0].finish_round;
  for (const NodeMetrics& m : metrics.node) {
    EXPECT_EQ(m.finish_round, expected_finish);
  }
}

TEST(RobustnessTest, SleepingMisCorruptsUnderHeavyLossAndVerifierCatchesIt) {
  // A dropped InMIS/status message means a dominated node never learns
  // it should be eliminated: with 30% loss on a dense-ish graph the
  // output is invalid for most seeds. This test documents (a) the
  // sensitivity and (b) that our verifier detects it.
  Rng rng(6);
  const Graph g = gen::gnp_avg_degree(64, 8.0, rng);
  int invalid = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    fault::FaultPlan plan;
    plan.loss_prob = 0.3;
    NetworkOptions options;
    options.fault = &plan;
    Network net(g, seed, options);
    net.run(core::sleeping_mis());
    if (!analysis::check_mis(g, net.outputs()).ok()) ++invalid;
  }
  EXPECT_GE(invalid, 5);
}

TEST(RobustnessTest, LightLossOftenSurvivable) {
  // At 1% loss on a sparse graph many runs still verify: corruption
  // requires losing one of the few decisive messages.
  Rng rng(8);
  const Graph g = gen::gnp_avg_degree(48, 4.0, rng);
  int valid = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    fault::FaultPlan plan;
    plan.loss_prob = 0.01;
    NetworkOptions options;
    options.fault = &plan;
    Network net(g, seed, options);
    net.run(core::sleeping_mis());
    valid += analysis::check_mis(g, net.outputs()).ok() ? 1 : 0;
  }
  EXPECT_GE(valid, 8);
}

TEST(RobustnessTest, GreedyIndependenceCanBreakButTerminates) {
  // CRT greedy under loss: a lost announcement lets a dominated node
  // later win vacuously -- adjacency in the MIS. Termination is still
  // guaranteed by the iteration cap. We require only termination +
  // verifier detection here.
  Rng rng(10);
  const Graph g = gen::gnp_avg_degree(40, 6.0, rng);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    fault::FaultPlan plan;
    plan.loss_prob = 0.2;
    NetworkOptions options;
    options.fault = &plan;
    Network net(g, seed, options);
    const Metrics& metrics = net.run(algos::distributed_greedy_mis());
    EXPECT_GT(metrics.makespan, 0u);
    analysis::check_mis(g, net.outputs());  // must not crash
  }
}

TEST(RobustnessTest, TraceRecordsInjectedLosses) {
  const Graph g = gen::complete(12);
  RingTrace trace(10'000);
  auto protocol = [](Context& ctx) -> Task {
    for (int i = 0; i < 10; ++i) co_await ctx.broadcast(Message::hello());
    ctx.decide(1);
  };
  fault::FaultPlan plan;
  plan.loss_prob = 0.25;
  NetworkOptions options;
  options.fault = &plan;
  options.trace = &trace;
  Network net(g, 3, options);
  const Metrics& metrics = net.run(protocol);
  EXPECT_EQ(trace.count(TraceEventKind::kDropFault), metrics.injected_losses);
  EXPECT_GT(metrics.injected_losses, 0u);
}

}  // namespace
}  // namespace slumber::sim
