// Tests for Luby's (Delta+1)-coloring -- the paper's traditional-model
// O(1) node-averaged contrast point (Section 1.5).
#include <gtest/gtest.h>

#include "algos/luby_coloring.h"
#include "analysis/verify.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace slumber::algos {
namespace {

sim::RunResult run_on(const Graph& g, std::uint64_t seed) {
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  return sim::run_protocol(g, seed, luby_coloring(), options);
}

TEST(ColoringTest, ProperOnCoreFamilies) {
  for (gen::Family family : gen::core_families()) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      const Graph g = gen::make(family, 70, seed);
      auto [metrics, outputs] = run_on(g, seed * 3 + 1);
      EXPECT_TRUE(analysis::check_coloring(g, outputs))
          << gen::family_name(family) << " seed " << seed;
    }
  }
}

TEST(ColoringTest, IsolatedNodesGetColorZero) {
  const Graph g = gen::empty(4);
  auto [metrics, outputs] = run_on(g, 1);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(outputs[v], 0);
}

TEST(ColoringTest, CompleteGraphUsesAllColors) {
  const Graph g = gen::complete(8);
  auto [metrics, outputs] = run_on(g, 5);
  std::vector<bool> used(8, false);
  for (auto c : outputs) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 8);
    EXPECT_FALSE(used[static_cast<std::size_t>(c)]);
    used[static_cast<std::size_t>(c)] = true;
  }
}

TEST(ColoringTest, ColorsWithinDegreePlusOne) {
  Rng rng(2);
  const Graph g = gen::barabasi_albert(100, 3, rng);
  auto [metrics, outputs] = run_on(g, 7);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(outputs[v], 0);
    EXPECT_LE(outputs[v], static_cast<std::int64_t>(g.degree(v)));
  }
}

TEST(ColoringTest, NodeAveragedRoundsSmall) {
  // The O(1) node-averaged property: the mean decision round stays small
  // and essentially flat in n (each iteration finishes >= 1/4 of nodes).
  for (const VertexId n : {64u, 256u, 1024u}) {
    Rng rng(n);
    const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
    auto [metrics, outputs] = run_on(g, 3);
    EXPECT_TRUE(analysis::check_coloring(g, outputs));
    EXPECT_LE(metrics.node_avg_decided(), 12.0) << n;
  }
}

TEST(ColoringTest, DeterministicGivenSeed) {
  Rng rng(5);
  const Graph g = gen::gnp_avg_degree(64, 6.0, rng);
  auto a = run_on(g, 9);
  auto b = run_on(g, 9);
  EXPECT_EQ(a.outputs, b.outputs);
}

}  // namespace
}  // namespace slumber::algos
