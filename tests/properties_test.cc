// Tests for structural graph properties.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/properties.h"

namespace slumber {
namespace {

TEST(PropertiesTest, ComponentsOfCliqueChain) {
  const Graph g = gen::clique_chain(12, 4);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3u);
  EXPECT_EQ(c.component_of[0], c.component_of[3]);
  EXPECT_NE(c.component_of[0], c.component_of[4]);
}

TEST(PropertiesTest, ConnectedDetection) {
  EXPECT_TRUE(is_connected(gen::cycle(9)));
  EXPECT_TRUE(is_connected(gen::empty(0)));
  EXPECT_FALSE(is_connected(gen::empty(2)));
}

TEST(PropertiesTest, BfsDistancesOnPath) {
  const Graph g = gen::path(6);
  const auto dist = bfs_distances(g, 0);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(dist[v], static_cast<std::int64_t>(v));
  }
}

TEST(PropertiesTest, BfsUnreachableIsMinusOne) {
  const Graph g = gen::empty(3);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], -1);
}

TEST(PropertiesTest, DiameterKnownGraphs) {
  EXPECT_EQ(diameter(gen::path(7)), 6);
  EXPECT_EQ(diameter(gen::cycle(8)), 4);
  EXPECT_EQ(diameter(gen::complete(5)), 1);
  EXPECT_EQ(diameter(gen::star(9)), 2);
  EXPECT_EQ(diameter(gen::empty(0)), -1);
}

TEST(PropertiesTest, EccentricityCenterOfPath) {
  const Graph g = gen::path(7);
  EXPECT_EQ(eccentricity(g, 3), 3);
  EXPECT_EQ(eccentricity(g, 0), 6);
}

TEST(PropertiesTest, DegeneracyOfTreeIsOne) {
  Rng rng(2);
  const Graph t = gen::random_tree(64, rng);
  EXPECT_EQ(degeneracy_order(t).degeneracy, 1u);
}

TEST(PropertiesTest, DegeneracyOfCompleteGraph) {
  EXPECT_EQ(degeneracy_order(gen::complete(6)).degeneracy, 5u);
}

TEST(PropertiesTest, DegeneracyOfCycleIsTwo) {
  EXPECT_EQ(degeneracy_order(gen::cycle(12)).degeneracy, 2u);
}

TEST(PropertiesTest, DegeneracyOrderIsPermutation) {
  Rng rng(4);
  const Graph g = gen::gnp(50, 0.2, rng);
  const auto result = degeneracy_order(g);
  std::vector<bool> seen(50, false);
  for (VertexId v : result.order) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  EXPECT_EQ(result.order.size(), 50u);
}

TEST(PropertiesTest, ArboricityBoundsSandwich) {
  // Arboricity of K_6 is 3: lower bound ceil(15/5)=3, upper (degeneracy) 5.
  const auto bounds = arboricity_bounds(gen::complete(6));
  EXPECT_EQ(bounds.lower, 3u);
  EXPECT_EQ(bounds.upper, 5u);
  // A tree has arboricity 1.
  Rng rng(1);
  const auto tree_bounds = arboricity_bounds(gen::random_tree(40, rng));
  EXPECT_EQ(tree_bounds.lower, 1u);
  EXPECT_EQ(tree_bounds.upper, 1u);
}

TEST(PropertiesTest, TriangleCounts) {
  EXPECT_EQ(triangle_count(gen::complete(5)), 10u);  // C(5,3)
  EXPECT_EQ(triangle_count(gen::cycle(5)), 0u);
  EXPECT_EQ(triangle_count(gen::complete_bipartite(4, 4)), 0u);
  Rng rng(1);
  EXPECT_EQ(triangle_count(gen::random_tree(30, rng)), 0u);
}

TEST(PropertiesTest, AverageDegree) {
  EXPECT_DOUBLE_EQ(average_degree(gen::cycle(10)), 2.0);
  EXPECT_DOUBLE_EQ(average_degree(gen::empty(0)), 0.0);
  EXPECT_DOUBLE_EQ(average_degree(gen::complete(5)), 4.0);
}

}  // namespace
}  // namespace slumber
