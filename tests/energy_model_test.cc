// Energy-accounting identities. energy_test.cc covers the basic model;
// this suite locks in the algebraic relationships the duty_cycle
// example and bench E9 rely on:
//
//   total(model) == marginal(model) + sleep_mw * round_time * finish
//
// per node, where marginal subtracts the sleep draw from every state
// (sleeping becomes the free ground state), plus monotonicity in each
// power knob.
#include <gtest/gtest.h>

#include "algos/luby.h"
#include "core/sleeping_mis.h"
#include "energy/energy.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/rng.h"

namespace slumber::energy {
namespace {

EnergyModel marginal(const EnergyModel& base) {
  EnergyModel m = base;
  m.idle_mw -= base.sleep_mw;
  m.rx_mw -= base.sleep_mw;
  m.tx_mw -= base.sleep_mw;
  m.sleep_mw = 0.0;
  return m;
}

sim::Metrics run_sleeping(const Graph& g, std::uint64_t seed) {
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  return sim::run_protocol(g, seed, core::sleeping_mis(), options).metrics;
}

TEST(EnergyModelTest, MarginalDecomposition) {
  Rng rng(3);
  const Graph g = gen::gnp_avg_degree(64, 6.0, rng);
  const sim::Metrics metrics = run_sleeping(g, 11);

  const EnergyModel base;
  const EnergyModel marg = marginal(base);
  const double round_s = base.round_ms * 1e-3;
  for (const sim::NodeMetrics& node : metrics.node) {
    const double total = base.node_energy_mj(node);
    const double above_ground = marg.node_energy_mj(node);
    const double ground =
        base.sleep_mw * round_s * static_cast<double>(node.finish_round);
    EXPECT_NEAR(total, above_ground + ground, 1e-9);
  }
}

TEST(EnergyModelTest, IdealizedChargesNothingForSleep) {
  // Under the paper's idealized model a node that only sleeps costs 0.
  const EnergyModel ideal = EnergyModel::idealized();
  sim::NodeMetrics sleeper;
  sleeper.awake_rounds = 0;
  sleeper.finish_round = 1'000'000;
  EXPECT_DOUBLE_EQ(ideal.node_energy_mj(sleeper), 0.0);
  // And the same node costs a million sleep-rounds under the default.
  const EnergyModel real;
  EXPECT_NEAR(real.node_energy_mj(sleeper), 43.0 * 1e-3 * 1e6, 1e-6);
}

TEST(EnergyModelTest, MessagePremiumsAreAdditive) {
  EnergyModel m;
  sim::NodeMetrics a;
  a.awake_rounds = 10;
  a.finish_round = 10;
  sim::NodeMetrics b = a;
  b.messages_sent = 5;
  b.messages_received = 3;
  const double round_s = m.round_ms * 1e-3;
  const double expected_premium =
      (m.tx_mw - m.idle_mw) * m.msg_fraction * round_s * 5 +
      (m.rx_mw - m.idle_mw) * m.msg_fraction * round_s * 3;
  EXPECT_NEAR(m.node_energy_mj(b) - m.node_energy_mj(a), expected_premium,
              1e-12);
}

TEST(EnergyModelTest, AwakeTimeDominatesForIdleListeners) {
  // A node that idles (listens without traffic) for k rounds pays
  // k * idle -- the Section 1.1 point that idle listening is nearly as
  // expensive as receiving.
  EnergyModel m;
  sim::NodeMetrics idler;
  idler.awake_rounds = 100;
  idler.finish_round = 100;
  const double idle_cost = m.node_energy_mj(idler);
  sim::NodeMetrics sleeper;
  sleeper.awake_rounds = 0;
  sleeper.finish_round = 100;
  EXPECT_GT(idle_cost, 15.0 * m.node_energy_mj(sleeper));
}

TEST(EnergyModelTest, ReportAggregatesMatchPerNode) {
  Rng rng(5);
  const Graph g = gen::gnp_avg_degree(48, 5.0, rng);
  const sim::Metrics metrics = run_sleeping(g, 21);
  const EnergyModel model;
  const EnergyReport report = evaluate(model, metrics);
  ASSERT_EQ(report.per_node_mj.size(), metrics.node.size());
  double total = 0.0;
  double max = 0.0;
  for (double mj : report.per_node_mj) {
    total += mj;
    max = std::max(max, mj);
  }
  EXPECT_NEAR(report.total_mj, total, 1e-9);
  EXPECT_DOUBLE_EQ(report.max_mj, max);
  EXPECT_NEAR(report.mean_mj, total / metrics.node.size(), 1e-9);
}

// The headline energy ordering on a fixed run: idealized <= marginal
// <= default, because each step adds sleep-draw charges.
TEST(EnergyModelTest, ModelOrderingOnRealRuns) {
  Rng rng(9);
  const Graph g = gen::gnp_avg_degree(64, 6.0, rng);
  const sim::Metrics metrics = run_sleeping(g, 31);
  const EnergyModel base;
  const auto ideal_report = evaluate(EnergyModel::idealized(), metrics);
  const auto marg_report = evaluate(marginal(base), metrics);
  const auto full_report = evaluate(base, metrics);
  EXPECT_LE(marg_report.total_mj, full_report.total_mj);
  EXPECT_LE(ideal_report.total_mj, full_report.total_mj);
}

}  // namespace
}  // namespace slumber::energy
